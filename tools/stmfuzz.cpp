//===- tools/stmfuzz.cpp - Differential STM fuzzing CLI -------------------===//
//
// Part of the GPU-STM reproduction (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the fuzz subsystem (DESIGN.md section 10):
///
///   stmfuzz run --seeds 10000               # fuzz a seed range
///   stmfuzz one 12345                       # one seed, verbose
///   stmfuzz repro 12345                     # print a regression test
///   stmfuzz show 12345                      # dump the generated program
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzWorkload.h"
#include "fuzz/Fuzzer.h"
#include "support/Format.h"
#include "support/Parallel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gpustm;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "\n"
      "  run  [--seeds N] [--start S] [-v <variant>]... [--trace-sample N]\n"
      "       [--jobs N] [--device-jobs N] [--watchdog N] [--digest-out F]\n"
      "       [--repro-out F] [--no-shrink] [--max-failures N]\n"
      "       [--check-determinism] [--check-jobs]\n"
      "       [--wmm] [--wmm-seed N] [--wmm-buffer N]\n"
      "      Fuzz seeds S..S+N-1 (default 0..499) under every requested\n"
      "      variant (default: all seven), checking each run against the\n"
      "      sequential oracle and trace-checking every --trace-sample'th\n"
      "      seed.  On failure, greedily shrinks the first failing seed and\n"
      "      prints a standalone regression test.  --digest-out writes one\n"
      "      'seed digest' line per seed for cross-process determinism\n"
      "      diffs (e.g. GPUSTM_DEVICE_JOBS=1 vs =4 in CI).  --wmm runs\n"
      "      every variant under the weak-memory model (src/wmm/); on\n"
      "      failure the minimal reordering witness is printed.\n"
      "  one <seed> [run options]\n"
      "      Run a single seed and print every variant's outcome.\n"
      "  repro <seed> [run options]\n"
      "      Run a single seed and print a standalone regression test\n"
      "      (checked in under tests/fuzz/ once the bug is fixed).\n"
      "  show <seed>\n"
      "      Print the generated program without running it.\n"
      "\n"
      "      Variants: cgl vbv tbv hv backoff opt egpgv (or paper names).\n",
      Argv0);
  return 2;
}

bool parseVariant(const std::string &Name, stm::Variant &Out) {
  struct Alias {
    const char *Name;
    stm::Variant Kind;
  };
  static const Alias Aliases[] = {
      {"cgl", stm::Variant::CGL},
      {"vbv", stm::Variant::VBV},
      {"tbv", stm::Variant::TBVSorting},
      {"hv", stm::Variant::HVSorting},
      {"backoff", stm::Variant::HVBackoff},
      {"opt", stm::Variant::Optimized},
      {"egpgv", stm::Variant::EGPGV},
  };
  for (const Alias &A : Aliases)
    if (Name == A.Name) {
      Out = A.Kind;
      return true;
    }
  for (unsigned V = 0; V <= static_cast<unsigned>(stm::Variant::EGPGV); ++V)
    if (Name == stm::variantName(static_cast<stm::Variant>(V))) {
      Out = static_cast<stm::Variant>(V);
      return true;
    }
  return false;
}

/// Positional/flag cursor over argv.
struct Args {
  int Argc;
  char **Argv;
  int I = 2; // past "<prog> <command>"

  bool done() const { return I >= Argc; }
  std::string next() { return Argv[I++]; }
  bool value(const char *Flag, std::string &Out) {
    if (done()) {
      std::fprintf(stderr, "stmfuzz: %s needs a value\n", Flag);
      return false;
    }
    Out = next();
    return true;
  }
};

struct RunOptions {
  uint64_t Seeds = 500;
  uint64_t Start = 0;
  unsigned Jobs = 0; // 0 = GPUSTM_JOBS.
  std::string DigestOut;
  std::string ReproOut;
  bool Shrink = true;
  unsigned MaxFailures = 10;
  fuzz::FuzzOptions Fuzz;
};

/// Parse one flag shared by run/one/repro; returns 0 when consumed,
/// 2 on error, -1 when the flag is unknown.
int parseRunFlag(Args &A, const std::string &Arg, RunOptions &R) {
  std::string Val;
  if (Arg == "--seeds") {
    if (!A.value("--seeds", Val))
      return 2;
    R.Seeds = std::strtoull(Val.c_str(), nullptr, 10);
  } else if (Arg == "--start") {
    if (!A.value("--start", Val))
      return 2;
    R.Start = std::strtoull(Val.c_str(), nullptr, 10);
  } else if (Arg == "-v" || Arg == "--variant") {
    if (!A.value(Arg.c_str(), Val))
      return 2;
    stm::Variant Kind;
    if (!parseVariant(Val, Kind)) {
      std::fprintf(stderr, "stmfuzz: unknown variant '%s'\n", Val.c_str());
      return 2;
    }
    R.Fuzz.Variants.push_back(Kind);
  } else if (Arg == "--trace-sample") {
    if (!A.value("--trace-sample", Val))
      return 2;
    R.Fuzz.TraceSamplePeriod =
        static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
  } else if (Arg == "--jobs") {
    if (!A.value("--jobs", Val))
      return 2;
    R.Jobs = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
  } else if (Arg == "--device-jobs") {
    if (!A.value("--device-jobs", Val))
      return 2;
    R.Fuzz.DeviceJobs =
        static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
  } else if (Arg == "--watchdog") {
    if (!A.value("--watchdog", Val))
      return 2;
    R.Fuzz.WatchdogRounds = std::strtoull(Val.c_str(), nullptr, 10);
  } else if (Arg == "--digest-out") {
    if (!A.value("--digest-out", Val))
      return 2;
    R.DigestOut = Val;
  } else if (Arg == "--repro-out") {
    if (!A.value("--repro-out", Val))
      return 2;
    R.ReproOut = Val;
  } else if (Arg == "--no-shrink") {
    R.Shrink = false;
  } else if (Arg == "--max-failures") {
    if (!A.value("--max-failures", Val))
      return 2;
    R.MaxFailures =
        static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
  } else if (Arg == "--check-determinism") {
    R.Fuzz.CheckDeterminism = true;
  } else if (Arg == "--check-jobs") {
    R.Fuzz.CheckJobsInvariance = true;
  } else if (Arg == "--wmm") {
    R.Fuzz.Wmm = true;
  } else if (Arg == "--wmm-seed") {
    if (!A.value("--wmm-seed", Val))
      return 2;
    R.Fuzz.WmmSeed = std::strtoull(Val.c_str(), nullptr, 10);
    R.Fuzz.Wmm = true;
  } else if (Arg == "--wmm-buffer") {
    if (!A.value("--wmm-buffer", Val))
      return 2;
    R.Fuzz.WmmBuffer =
        static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    R.Fuzz.Wmm = true;
  } else {
    return -1;
  }
  return 0;
}

void printOutcomes(const fuzz::SeedResult &R) {
  for (const fuzz::VariantOutcome &V : R.Outcomes)
    std::printf("  %-16s %s%s%s  digest %016llx\n", stm::variantName(V.Kind),
                V.Passed ? "ok" : "FAIL (", V.Passed ? "" : V.Check.c_str(),
                V.Passed ? "" : ")",
                static_cast<unsigned long long>(V.Digest));
}

/// Shrink the first failure (options narrowed to its failing variants) and
/// print the minimized program plus a regression test; also writes the
/// test to \p ReproOut when set.
void reportFailure(uint64_t Seed, const fuzz::SeedResult &R,
                   const RunOptions &Opts) {
  std::fprintf(stderr, "%s", R.failureSummary().c_str());
  fuzz::FuzzOptions Narrow = Opts.Fuzz;
  Narrow.Variants.clear();
  bool TraceFailed = false;
  for (const fuzz::VariantOutcome &V : R.Outcomes)
    if (!V.Passed) {
      Narrow.Variants.push_back(V.Kind);
      TraceFailed |= V.Check == "trace" || V.Check == "trace-identity";
    }
  Narrow.TraceSamplePeriod = TraceFailed ? 1 : 0;

  fuzz::FuzzProgram P = fuzz::generateProgram(Seed);
  std::fprintf(stderr, "failing program: %s\n", P.summary().c_str());
  if (Opts.Shrink) {
    fuzz::FuzzProgram Small = fuzz::shrinkProgram(P, Narrow);
    std::fprintf(stderr, "shrunk to: %s\n", Small.summary().c_str());
  }
  std::string Test = fuzz::reproTestSource(Seed, Narrow, R);
  std::printf("%s", Test.c_str());
  if (!Opts.ReproOut.empty()) {
    if (std::FILE *F = std::fopen(Opts.ReproOut.c_str(), "w")) {
      std::fputs(Test.c_str(), F);
      std::fclose(F);
      std::fprintf(stderr, "repro test written to %s\n",
                   Opts.ReproOut.c_str());
    } else {
      std::fprintf(stderr, "stmfuzz: cannot write %s\n",
                   Opts.ReproOut.c_str());
    }
  }
}

int cmdRun(Args &A) {
  RunOptions Opts;
  while (!A.done()) {
    std::string Arg = A.next();
    int Rc = parseRunFlag(A, Arg, Opts);
    if (Rc == 2)
      return 2;
    if (Rc == -1) {
      std::fprintf(stderr, "stmfuzz: unknown run option '%s'\n", Arg.c_str());
      return 2;
    }
  }
  unsigned Jobs = Opts.Jobs != 0 ? Opts.Jobs : hostJobs();

  std::atomic<uint64_t> Done{0};
  std::vector<fuzz::SeedResult> Results =
      parallelMapIndexed<fuzz::SeedResult>(
          static_cast<size_t>(Opts.Seeds), Jobs, [&](size_t I) {
            fuzz::SeedResult R =
                fuzz::runSeed(Opts.Start + I, Opts.Fuzz);
            uint64_t N = ++Done;
            if (N % 500 == 0)
              std::fprintf(stderr, "stmfuzz: %llu/%llu seeds\n",
                           static_cast<unsigned long long>(N),
                           static_cast<unsigned long long>(Opts.Seeds));
            return R;
          });

  if (!Opts.DigestOut.empty()) {
    std::FILE *F = std::fopen(Opts.DigestOut.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "stmfuzz: cannot write %s\n",
                   Opts.DigestOut.c_str());
      return 1;
    }
    for (const fuzz::SeedResult &R : Results)
      std::fprintf(F, "%llu %016llx\n",
                   static_cast<unsigned long long>(R.Seed),
                   static_cast<unsigned long long>(R.combinedDigest()));
    std::fclose(F);
  }

  std::vector<uint64_t> Failing;
  for (const fuzz::SeedResult &R : Results)
    if (!R.Passed)
      Failing.push_back(R.Seed);
  std::printf("stmfuzz: %llu seeds, %zu failing\n",
              static_cast<unsigned long long>(Opts.Seeds), Failing.size());
  if (Failing.empty())
    return 0;

  for (size_t I = 0; I < Failing.size() && I < Opts.MaxFailures; ++I)
    std::fprintf(stderr, "%s",
                 Results[Failing[I] - Opts.Start].failureSummary().c_str());
  if (Failing.size() > Opts.MaxFailures)
    std::fprintf(stderr, "(%zu further failing seeds not shown)\n",
                 Failing.size() - Opts.MaxFailures);
  reportFailure(Failing.front(), Results[Failing.front() - Opts.Start], Opts);
  return 1;
}

int cmdOne(Args &A, bool Repro) {
  if (A.done())
    return usage(A.Argv[0]);
  uint64_t Seed = std::strtoull(A.next().c_str(), nullptr, 10);
  RunOptions Opts;
  while (!A.done()) {
    std::string Arg = A.next();
    int Rc = parseRunFlag(A, Arg, Opts);
    if (Rc == 2)
      return 2;
    if (Rc == -1) {
      std::fprintf(stderr, "stmfuzz: unknown option '%s'\n", Arg.c_str());
      return 2;
    }
  }
  fuzz::FuzzProgram P = fuzz::generateProgram(Seed);
  fuzz::SeedResult R = fuzz::runProgram(P, Opts.Fuzz);
  if (Repro) {
    fuzz::FuzzOptions Printed = Opts.Fuzz;
    if (Printed.TraceSamplePeriod > 1)
      Printed.TraceSamplePeriod = 1; // The test always trace-checks.
    std::printf("%s", fuzz::reproTestSource(Seed, Printed, R).c_str());
    return R.Passed ? 0 : 1;
  }
  std::printf("%s\n", P.summary().c_str());
  printOutcomes(R);
  if (!R.Passed)
    reportFailure(Seed, R, Opts);
  return R.Passed ? 0 : 1;
}

int cmdShow(Args &A) {
  if (A.done())
    return usage(A.Argv[0]);
  uint64_t Seed = std::strtoull(A.next().c_str(), nullptr, 10);
  fuzz::FuzzProgram P = fuzz::generateProgram(Seed);
  std::printf("%s\n", P.summary().c_str());
  for (size_t T = 0; T < P.Tasks.size(); ++T) {
    if (P.Tasks[T].Txs.empty())
      continue;
    std::printf("task %zu:\n", T);
    for (size_t X = 0; X < P.Tasks[T].Txs.size(); ++X) {
      const fuzz::FuzzTx &Tx = P.Tasks[T].Txs[X];
      std::printf("  tx %zu%s%s: %zu preop(s),", X,
                  Tx.ReadOnly ? " [read-only]" : "",
                  Tx.AbortFirstAttempt ? " [abort-first]" : "",
                  Tx.PreOps.size());
      for (const fuzz::FuzzOp &Op : Tx.Ops)
        std::printf(" %s(%u%s)",
                    Op.Kind == fuzz::FuzzOpKind::TxRead    ? "R"
                    : Op.Kind == fuzz::FuzzOpKind::TxWrite ? "W"
                                                           : "RMW",
                    Op.Slot, Op.AccAddr ? "+acc" : "");
      std::printf("\n");
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  Args A{Argc, Argv};
  std::string Cmd = Argv[1];
  if (Cmd == "run")
    return cmdRun(A);
  if (Cmd == "one")
    return cmdOne(A, /*Repro=*/false);
  if (Cmd == "repro")
    return cmdOne(A, /*Repro=*/true);
  if (Cmd == "show")
    return cmdShow(A);
  std::fprintf(stderr, "stmfuzz: unknown command '%s'\n", Cmd.c_str());
  return usage(Argv[0]);
}
