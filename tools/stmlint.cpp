//===- tools/stmlint.cpp - Pre-launch static analysis CLI -----------------===//
//
// Part of the GPU-STM reproduction (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the stmlint static analyzer:
///
///   stmlint check -w RA -v hv             # one workload, one variant
///   stmlint matrix -o report.json         # 7 variants x 6 workloads
///   stmlint fuzz --seeds 16               # exact analysis of fuzz programs
///
/// Exit status is non-zero iff some analyzed cell has an error-severity
/// finding (capacity overflow, isolation violation, invalid config).
///
//===----------------------------------------------------------------------===//

#include "analysis/static/Lint.h"
#include "fuzz/FuzzProgram.h"
#include "fuzz/FuzzWorkload.h"
#include "fuzz/Fuzzer.h"
#include "support/Format.h"
#include "workloads/All.h"
#include "workloads/LintDriver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gpustm;

namespace {

const char *const AllWorkloads[] = {"RA", "HT", "EB", "LB", "GN", "KM"};

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "\n"
      "  check -w <RA|HT|EB|LB|GN|KM> [-v <variant>] [--scale N]\n"
      "        [--locks N] [--disable-sorting] [-o <out.json>]\n"
      "      Statically analyze one workload under one variant: worst-case\n"
      "      log capacity vs caps, lock-stripe collisions, strong-isolation\n"
      "      overlaps, acquire ordering, predicted conflict density.\n"
      "  matrix [--scale N] [--locks N] [-o <out.json>]\n"
      "      Analyze the full 7-variant x 6-workload evaluation matrix.\n"
      "  fuzz [--seeds N] [--start SEED] [-o <out.json>]\n"
      "      Analyze generated fuzz programs (a closed IR: the analysis is\n"
      "      exact up to data-dependent indices) under every variant.\n"
      "\n"
      "      Variants: cgl vbv tbv hv backoff opt egpgv (or paper names).\n",
      Argv0);
  return 2;
}

bool parseVariant(const std::string &Name, stm::Variant &Out) {
  struct Alias {
    const char *Name;
    stm::Variant Kind;
  };
  static const Alias Aliases[] = {
      {"cgl", stm::Variant::CGL},
      {"vbv", stm::Variant::VBV},
      {"tbv", stm::Variant::TBVSorting},
      {"hv", stm::Variant::HVSorting},
      {"backoff", stm::Variant::HVBackoff},
      {"opt", stm::Variant::Optimized},
      {"egpgv", stm::Variant::EGPGV},
  };
  for (const Alias &A : Aliases)
    if (Name == A.Name) {
      Out = A.Kind;
      return true;
    }
  for (unsigned V = 0; V <= static_cast<unsigned>(stm::Variant::EGPGV); ++V)
    if (Name == stm::variantName(static_cast<stm::Variant>(V))) {
      Out = static_cast<stm::Variant>(V);
      return true;
    }
  return false;
}

/// Positional/flag cursor over argv.
struct Args {
  int Argc;
  char **Argv;
  int I = 2; // past "<prog> <command>"

  bool done() const { return I >= Argc; }
  std::string next() { return Argv[I++]; }
  bool value(const char *Flag, std::string &Out) {
    if (done()) {
      std::fprintf(stderr, "stmlint: %s needs a value\n", Flag);
      return false;
    }
    Out = next();
    return true;
  }
};

/// Analyze one (workload, variant) cell and append its report.
bool lintCell(const std::string &WorkloadName, stm::Variant Kind,
              unsigned Scale, size_t NumLocks, bool DisableSorting,
              std::vector<staticlint::LintReport> &Reports) {
  std::unique_ptr<workloads::Workload> W =
      workloads::makeWorkload(WorkloadName, Scale);
  workloads::HarnessConfig HC;
  HC.Kind = Kind;
  HC.Launches = workloads::paperLaunches(WorkloadName, Scale);
  HC.NumLocks = NumLocks;
  HC.DisableSorting = DisableSorting;
  workloads::LintDriverResult R = workloads::lintWorkload(*W, HC);
  if (!R.Modeled) {
    std::fprintf(stderr, "stmlint: %s has no static footprint model\n",
                 WorkloadName.c_str());
    return false;
  }
  staticlint::printLintReport(stdout, R.Report);
  Reports.push_back(std::move(R.Report));
  return true;
}

/// Write the collected reports when -o was given; returns process exit.
int finish(const std::vector<staticlint::LintReport> &Reports,
           const std::string &OutPath) {
  unsigned Errors = 0, Warnings = 0;
  for (const staticlint::LintReport &R : Reports) {
    Errors += R.errors();
    Warnings += R.warnings();
  }
  if (!OutPath.empty()) {
    std::string Err;
    if (!staticlint::writeLintJson(Reports, OutPath, &Err)) {
      std::fprintf(stderr, "stmlint: %s\n", Err.c_str());
      return 2;
    }
  }
  std::printf("stmlint: %zu cell(s), %u error(s), %u warning(s)\n",
              Reports.size(), Errors, Warnings);
  return Errors ? 1 : 0;
}

int cmdCheck(Args &A) {
  std::string WorkloadName, Out;
  stm::Variant Kind = stm::Variant::HVSorting;
  unsigned Scale = 1;
  size_t NumLocks = 1u << 16;
  bool DisableSorting = false;

  while (!A.done()) {
    std::string Arg = A.next();
    std::string Val;
    if (Arg == "-w" || Arg == "--workload") {
      if (!A.value(Arg.c_str(), WorkloadName))
        return 2;
    } else if (Arg == "-v" || Arg == "--variant") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      if (!parseVariant(Val, Kind)) {
        std::fprintf(stderr, "stmlint: unknown variant '%s'\n", Val.c_str());
        return 2;
      }
    } else if (Arg == "--scale") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Scale = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Arg == "--locks") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      NumLocks = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "--disable-sorting") {
      DisableSorting = true;
    } else if (Arg == "-o") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else {
      std::fprintf(stderr, "stmlint: unknown argument '%s'\n", Arg.c_str());
      return 2;
    }
  }
  if (WorkloadName.empty()) {
    std::fprintf(stderr, "stmlint: check needs -w <workload>\n");
    return 2;
  }
  std::vector<staticlint::LintReport> Reports;
  if (!lintCell(WorkloadName, Kind, Scale, NumLocks, DisableSorting, Reports))
    return 2;
  return finish(Reports, Out);
}

int cmdMatrix(Args &A) {
  std::string Out, Val;
  unsigned Scale = 1;
  size_t NumLocks = 1u << 16;

  while (!A.done()) {
    std::string Arg = A.next();
    if (Arg == "--scale") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Scale = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Arg == "--locks") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      NumLocks = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "-o") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else {
      std::fprintf(stderr, "stmlint: unknown argument '%s'\n", Arg.c_str());
      return 2;
    }
  }
  std::vector<staticlint::LintReport> Reports;
  for (const char *Name : AllWorkloads)
    for (stm::Variant Kind : fuzz::allVariants())
      if (!lintCell(Name, Kind, Scale, NumLocks, /*DisableSorting=*/false,
                    Reports))
        return 2;
  return finish(Reports, Out);
}

int cmdFuzz(Args &A) {
  std::string Out, Val;
  unsigned Seeds = 16;
  uint64_t Start = 1;

  while (!A.done()) {
    std::string Arg = A.next();
    if (Arg == "--seeds") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Seeds = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Arg == "--start") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Start = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "-o") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else {
      std::fprintf(stderr, "stmlint: unknown argument '%s'\n", Arg.c_str());
      return 2;
    }
  }
  std::vector<staticlint::LintReport> Reports;
  for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed) {
    fuzz::FuzzProgram P = fuzz::generateProgram(Seed);
    for (stm::Variant Kind : fuzz::allVariants()) {
      fuzz::FuzzWorkload W(P);
      workloads::HarnessConfig HC;
      HC.Kind = Kind;
      HC.Launches.push_back(simt::LaunchConfig{P.GridDim, P.BlockDim});
      HC.NumLocks = P.NumLocks;
      HC.CoalescedLogs = P.CoalescedLogs;
      HC.SchedulerCap = P.SchedulerCap;
      HC.AdaptiveLocking = P.AdaptiveLocking;
      workloads::LintDriverResult R = workloads::lintWorkload(W, HC);
      if (!R.Modeled) {
        std::fprintf(stderr, "stmlint: fuzz seed %llu has no model\n",
                     static_cast<unsigned long long>(Seed));
        return 2;
      }
      staticlint::printLintReport(stdout, R.Report);
      Reports.push_back(std::move(R.Report));
    }
  }
  return finish(Reports, Out);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  Args A{Argc, Argv};
  if (Cmd == "check")
    return cmdCheck(A);
  if (Cmd == "matrix")
    return cmdMatrix(A);
  if (Cmd == "fuzz")
    return cmdFuzz(A);
  return usage(Argv[0]);
}
