//===- tools/stmserve.cpp - Kernel-stream serving CLI ---------------------===//
//
// Part of the GPU-STM reproduction (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the serving layer (src/serve/):
///
///   stmserve run    --builtin smoke             # serve a stream, summary
///   stmserve bench  --seed 7 --count 48         # latency percentiles
///   stmserve replay --script reqs.txt -o d.txt  # per-request digests
///   stmserve replay --script reqs.txt -o d.txt --oneshot
///                                               # same stream, fresh
///                                               # one-shot runs (CI diffs
///                                               # the two digest files)
///
/// Streams come from --script <file>, --builtin <name>, --seed/--count
/// (the deterministic mixed-traffic generator), or GPUSTM_SERVER_SCRIPT.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/EnvOptions.h"
#include "support/Format.h"
#include "workloads/All.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gpustm;
using namespace gpustm::serve;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> [stream] [options]\n"
      "\n"
      "commands:\n"
      "  run     Serve the stream; print per-request lines and a summary.\n"
      "  bench   Serve the stream; print latency percentiles by\n"
      "          temperature (cold / warm / cached) and throughput.\n"
      "  replay  Serve the stream; emit '<idx> <workload> <variant> <scale>\n"
      "          <digest> <ok>' lines (-o <file> or stdout).  With\n"
      "          --oneshot, run each request as a fresh one-shot instead of\n"
      "          through the server -- the two outputs must be identical.\n"
      "\n"
      "stream (first match wins):\n"
      "  --script <file>     request script: '<workload> <variant> [scale]\n"
      "                      [xN]' per line, '#' comments\n"
      "  --builtin <name>    built-in script ('smoke')\n"
      "  --seed N --count N  deterministic mixed-traffic generator\n"
      "  GPUSTM_SERVER_SCRIPT=<file> when no stream option is given\n"
      "\n"
      "options:\n"
      "  --workers N   worker threads (default GPUSTM_SERVER_WORKERS)\n"
      "  --queue N     submit-queue depth (default GPUSTM_SERVER_QUEUE)\n"
      "  --batch N     max requests per context checkout\n"
      "  --no-cache    disable the deterministic result cache\n"
      "  --no-verify   skip the workload oracles\n"
      "  -o <file>     replay: write digest lines there instead of stdout\n",
      Argv0);
  return 2;
}

/// Built-in request scripts; "smoke" is the CI stream: short, mixed
/// variants over three workloads, with repeats so the cache and the warm
/// path are both exercised.
const char *builtinScript(const std::string &Name) {
  if (Name == "smoke")
    return "# stmserve builtin 'smoke'\n"
           "HT hv x2\n"
           "HT opt\n"
           "RA hv x2\n"
           "HT vbv\n"
           "KM opt x2\n"
           "HT tbv\n"
           "RA opt\n"
           "HT backoff\n"
           "KM cgl\n"
           "HT cgl x2\n"
           "RA hv\n"
           "HT egpgv\n";
  return nullptr;
}

struct StreamOptions {
  std::string Script;
  std::string Builtin;
  uint64_t Seed = 0;
  unsigned Count = 0;
};

/// Resolve the request stream per the usage precedence; fatal diagnostics
/// go through stderr with a nonzero exit.
bool resolveStream(const StreamOptions &Opts, std::vector<Request> &Out) {
  std::string Err;
  if (!Opts.Script.empty()) {
    if (loadRequestScript(Opts.Script, Out, Err))
      return true;
    std::fprintf(stderr, "stmserve: %s\n", Err.c_str());
    return false;
  }
  if (!Opts.Builtin.empty()) {
    const char *Text = builtinScript(Opts.Builtin);
    if (!Text) {
      std::fprintf(stderr, "stmserve: unknown builtin '%s'\n",
                   Opts.Builtin.c_str());
      return false;
    }
    if (parseRequestScript(Text, Out, Err))
      return true;
    std::fprintf(stderr, "stmserve: builtin '%s': %s\n", Opts.Builtin.c_str(),
                 Err.c_str());
    return false;
  }
  if (Opts.Count != 0) {
    // Mixed traffic over the paper's bench workloads; VBV stays off RA/LB
    // (its read-set revalidation flood there takes minutes per request,
    // which is a bench scenario, not a smoke stream).
    Out = makeMixedStream(Opts.Seed, Opts.Count, {"HT", "KM"},
                          {stm::Variant::CGL, stm::Variant::VBV,
                           stm::Variant::TBVSorting, stm::Variant::HVSorting,
                           stm::Variant::HVBackoff, stm::Variant::Optimized,
                           stm::Variant::EGPGV});
    std::vector<Request> RaPart = makeMixedStream(
        Opts.Seed + 1, Opts.Count / 2, {"RA"},
        {stm::Variant::CGL, stm::Variant::TBVSorting, stm::Variant::HVSorting,
         stm::Variant::HVBackoff, stm::Variant::Optimized,
         stm::Variant::EGPGV});
    Out.insert(Out.end(), RaPart.begin(), RaPart.end());
    return true;
  }
  if (requestsFromEnv(Out))
    return true;
  std::fprintf(stderr, "stmserve: no stream given (--script/--builtin/"
                       "--seed+--count/GPUSTM_SERVER_SCRIPT)\n");
  return false;
}

void printLatencyLine(const char *Label, const LatencyStats &S) {
  if (S.Count == 0) {
    std::printf("  %-7s       (none)\n", Label);
    return;
  }
  std::printf("  %-7s %5u  p50 %9.2f ms  p95 %9.2f ms  p99 %9.2f ms  "
              "mean %9.2f ms  max %9.2f ms\n",
              Label, S.Count, S.P50, S.P95, S.P99, S.Mean, S.Max);
}

int serveAndReport(const std::vector<Request> &Stream,
                   const ServerConfig &Config, bool PerRequestLines) {
  StmServer Server(Config);
  auto Start = std::chrono::steady_clock::now();
  std::vector<RequestResult> Results = Server.serve(Stream);
  double WallMs =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - Start)
          .count();

  unsigned Failed = 0;
  std::vector<double> Cold, Warm, Cached, All;
  uint64_t Commits = 0;
  for (size_t I = 0; I < Results.size(); ++I) {
    const RequestResult &R = Results[I];
    if (!R.Ok) {
      ++Failed;
      std::fprintf(stderr, "stmserve: request %zu (%s) failed: %s\n", I,
                   requestKey(R.Req).c_str(), R.Error.c_str());
    }
    if (PerRequestLines)
      std::printf("%4zu  %-22s %-6s w%-2u %10.2f ms  (queue %8.2f ms)  "
                  "%016llx\n",
                  I, requestKey(R.Req).c_str(), temperatureName(R.Temp),
                  R.Worker, R.ServiceMs, R.QueueMs,
                  static_cast<unsigned long long>(R.Digest));
    (R.Temp == Temperature::Cold    ? Cold
     : R.Temp == Temperature::Warm ? Warm
                                   : Cached)
        .push_back(R.ServiceMs);
    All.push_back(R.TotalMs);
    Commits += R.Commits;
  }

  ServerStats Stats = Server.stats();
  std::printf("\n%zu request(s), %u worker(s), wall %.1f ms: "
              "%.2f req/s, %.0f commits/s\n",
              Results.size(), Server.config().Workers, WallMs,
              1e3 * static_cast<double>(Results.size()) / WallMs,
              1e3 * static_cast<double>(Commits) / WallMs);
  std::printf("contexts built %llu, batches %llu, cold %llu, warm %llu, "
              "cache hits %llu\n",
              static_cast<unsigned long long>(Stats.ContextsBuilt),
              static_cast<unsigned long long>(Stats.Batches),
              static_cast<unsigned long long>(Stats.ColdRuns),
              static_cast<unsigned long long>(Stats.WarmRuns),
              static_cast<unsigned long long>(Stats.CacheHits));
  std::printf("service latency by temperature:\n");
  printLatencyLine("cold", latencyStats(Cold));
  printLatencyLine("warm", latencyStats(Warm));
  printLatencyLine("cached", latencyStats(Cached));
  std::printf("end-to-end latency (queue + service):\n");
  printLatencyLine("all", latencyStats(All));
  if (Failed != 0) {
    std::fprintf(stderr, "stmserve: %u request(s) failed\n", Failed);
    return 1;
  }
  return 0;
}

int replay(const std::vector<Request> &Stream, const ServerConfig &Config,
           bool OneShot, const std::string &OutPath) {
  std::vector<RequestResult> Results;
  if (OneShot) {
    // Reference path: every request on a fresh workload + device, exactly
    // as the fig benches run cells.  The server output must match this
    // bit-for-bit.
    for (const Request &Req : Stream) {
      auto W = workloads::makeWorkload(Req.Workload, Req.Scale);
      workloads::HarnessConfig HC = requestConfig(Req);
      HC.Verify = Config.Verify;
      workloads::HarnessResult HR = workloads::runWorkload(*W, HC);
      RequestResult R;
      R.Req = Req;
      R.Ok = HR.Completed && (!Config.Verify || HR.Verified);
      R.Error = HR.Error;
      R.Digest = workloads::resultDigest(HR);
      Results.push_back(R);
    }
  } else {
    StmServer Server(Config);
    Results = Server.serve(Stream);
  }

  std::FILE *Out = stdout;
  if (!OutPath.empty()) {
    Out = std::fopen(OutPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "stmserve: cannot write %s\n", OutPath.c_str());
      return 1;
    }
  }
  unsigned Failed = 0;
  for (size_t I = 0; I < Results.size(); ++I) {
    const RequestResult &R = Results[I];
    std::fprintf(Out, "%zu %s %s %u %016llx %d\n", I, R.Req.Workload.c_str(),
                 stm::variantName(R.Req.Kind), R.Req.Scale,
                 static_cast<unsigned long long>(R.Digest), R.Ok ? 1 : 0);
    if (!R.Ok)
      ++Failed;
  }
  if (Out != stdout)
    std::fclose(Out);
  if (Failed != 0)
    std::fprintf(stderr, "stmserve: %u request(s) failed\n", Failed);
  return Failed == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd != "run" && Cmd != "bench" && Cmd != "replay")
    return usage(Argv[0]);

  StreamOptions Stream;
  ServerConfig Config;
  bool OneShot = false;
  std::string OutPath;

  auto value = [&](int &I, const char *Flag) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "stmserve: %s needs a value\n", Flag);
      std::exit(2);
    }
    return Argv[++I];
  };
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--script")
      Stream.Script = value(I, "--script");
    else if (Arg == "--builtin")
      Stream.Builtin = value(I, "--builtin");
    else if (Arg == "--seed")
      Stream.Seed = std::strtoull(value(I, "--seed"), nullptr, 10);
    else if (Arg == "--count")
      Stream.Count =
          static_cast<unsigned>(std::strtoul(value(I, "--count"), nullptr, 10));
    else if (Arg == "--workers")
      Config.Workers = static_cast<unsigned>(
          std::strtoul(value(I, "--workers"), nullptr, 10));
    else if (Arg == "--queue")
      Config.QueueDepth =
          static_cast<unsigned>(std::strtoul(value(I, "--queue"), nullptr, 10));
    else if (Arg == "--batch")
      Config.BatchCap =
          static_cast<unsigned>(std::strtoul(value(I, "--batch"), nullptr, 10));
    else if (Arg == "--no-cache")
      Config.CacheResults = 0;
    else if (Arg == "--no-verify")
      Config.Verify = false;
    else if (Arg == "--oneshot")
      OneShot = true;
    else if (Arg == "-o" || Arg == "--out")
      OutPath = value(I, "-o");
    else {
      std::fprintf(stderr, "stmserve: unknown option '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }

  std::vector<Request> Requests;
  if (!resolveStream(Stream, Requests))
    return 2;
  if (Requests.empty()) {
    std::fprintf(stderr, "stmserve: empty request stream\n");
    return 2;
  }

  if (Cmd == "replay")
    return replay(Requests, Config, OneShot, OutPath);
  return serveAndReport(Requests, Config, Cmd == "run");
}
