//===- tools/stmlitmus.cpp - Weak-memory litmus CLI -----------------------===//
//
// Part of the GPU-STM reproduction (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the weak-memory litmus checker (src/wmm/):
///
///   stmlitmus list                    # built-in tests and expectations
///   stmlitmus run [names...]          # run the suite (or a subset)
///
/// Each test declares a forbidden outcome and whether the weak-memory
/// model is expected to reach it; a reachable outcome prints the minimal
/// reordering witness found.  Exit status 1 when any expectation fails.
///
//===----------------------------------------------------------------------===//

#include "wmm/Litmus.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gpustm;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "\n"
      "  list\n"
      "      Print every built-in litmus test with its expectation.\n"
      "  run  [--seed N] [--buffer N] [--max-executions N] [--random N]\n"
      "       [-v] [names...]\n"
      "      Run the named tests (default: the whole suite).  A test\n"
      "      passes when the reachability of its forbidden outcome matches\n"
      "      the declared expectation; reachable outcomes print their\n"
      "      minimal reordering witness under -v (always on failure).\n",
      Argv0);
  return 2;
}

int cmdList() {
  for (const wmm::LitmusTest &T : wmm::builtinSuite())
    std::printf("%-28s %-11s %s\n", T.Name.c_str(),
                T.ExpectForbiddenReachable ? "reachable" : "unreachable",
                T.Note.c_str());
  return 0;
}

int cmdRun(int Argc, char **Argv) {
  wmm::LitmusRunOptions Opt;
  bool Verbose = false;
  std::vector<std::string> Names;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto value = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "stmlitmus: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--seed")
      Opt.Seed = std::strtoull(value("--seed"), nullptr, 10);
    else if (Arg == "--buffer")
      Opt.StoreBufferCap =
          static_cast<unsigned>(std::strtoul(value("--buffer"), nullptr, 10));
    else if (Arg == "--max-executions")
      Opt.MaxExecutions = static_cast<unsigned>(
          std::strtoul(value("--max-executions"), nullptr, 10));
    else if (Arg == "--random")
      Opt.RandomExecutions =
          static_cast<unsigned>(std::strtoul(value("--random"), nullptr, 10));
    else if (Arg == "-v" || Arg == "--verbose")
      Verbose = true;
    else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "stmlitmus: unknown option '%s'\n", Arg.c_str());
      return 2;
    } else
      Names.push_back(Arg);
  }

  std::vector<wmm::LitmusTest> Suite = wmm::builtinSuite();
  std::vector<const wmm::LitmusTest *> Selected;
  if (Names.empty()) {
    for (const wmm::LitmusTest &T : Suite)
      Selected.push_back(&T);
  } else {
    for (const std::string &N : Names) {
      const wmm::LitmusTest *Found = nullptr;
      for (const wmm::LitmusTest &T : Suite)
        if (T.Name == N)
          Found = &T;
      if (!Found) {
        std::fprintf(stderr, "stmlitmus: unknown test '%s' (try list)\n",
                     N.c_str());
        return 2;
      }
      Selected.push_back(Found);
    }
  }

  unsigned Failures = 0;
  for (const wmm::LitmusTest *T : Selected) {
    wmm::LitmusResult R = wmm::runLitmus(*T, Opt);
    std::printf("%-28s %s  forbidden %s (expected %s), %u execution%s%s\n",
                T->Name.c_str(), R.Passed ? "ok  " : "FAIL",
                R.ForbiddenReached ? "reached" : "not reached",
                T->ExpectForbiddenReachable ? "reachable" : "unreachable",
                R.Executions, R.Executions == 1 ? "" : "s",
                R.Exhaustive ? " (exhaustive)" : "");
    if ((Verbose || !R.Passed) && R.ForbiddenReached)
      std::printf("%s", R.WitnessText.c_str());
    if (!R.Passed)
      ++Failures;
  }
  std::printf("stmlitmus: %zu test%s, %u failing\n", Selected.size(),
              Selected.size() == 1 ? "" : "s", Failures);
  return Failures == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "run")
    return cmdRun(Argc, Argv);
  std::fprintf(stderr, "stmlitmus: unknown command '%s'\n", Cmd.c_str());
  return usage(Argv[0]);
}
