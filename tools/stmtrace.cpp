//===- tools/stmtrace.cpp - Transaction-trace CLI -------------------------===//
//
// Part of the GPU-STM reproduction (CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the trace subsystem:
///
///   stmtrace record -w RA -v hv -o ra.trace   # run a workload, record
///   stmtrace check  ra.trace                  # serializability + opacity
///   stmtrace report ra.trace                  # aborts, contention, waste
///   stmtrace export ra.trace -o ra.json       # Perfetto / chrome://tracing
///
//===----------------------------------------------------------------------===//

#include "analysis/Simtsan.h"
#include "support/Format.h"
#include "trace/Analysis.h"
#include "trace/Checker.h"
#include "trace/Perfetto.h"
#include "trace/Recorder.h"
#include "trace/TraceIO.h"
#include "workloads/All.h"
#include "workloads/Harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace gpustm;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "\n"
      "  record -w <RA|HT|EB|LB|GN|KM> [-v <variant>] [--scale N]\n"
      "         [--locks N] [--ops] [--no-verify] -o <trace>\n"
      "      Run a workload under the harness and record a binary trace.\n"
      "      Variants: cgl vbv tbv hv backoff opt egpgv (or paper names).\n"
      "  check <trace>\n"
      "      Verify serializability and opacity offline; non-zero exit and\n"
      "      a cause-specific diagnostic on violation.\n"
      "  report <trace> [--top N]\n"
      "      Abort-cause attribution, wasted work, contention heatmap.\n"
      "  export <trace> [-o <out.json>] [--ops]\n"
      "      Chrome trace_event JSON for Perfetto / chrome://tracing.\n"
      "  san    -w <RA|HT|EB|LB|GN|KM> [-v <variant>] [--scale N]\n"
      "         [--locks N] [--no-verify] [--max-reports N] [-o <out.json>]\n"
      "      Run a workload with the simtsan race/isolation/SIMT-hazard\n"
      "      detector attached; print every finding and exit non-zero if\n"
      "      there are any.\n",
      Argv0);
  return 2;
}

bool parseVariant(const std::string &Name, stm::Variant &Out) {
  struct Alias {
    const char *Name;
    stm::Variant Kind;
  };
  static const Alias Aliases[] = {
      {"cgl", stm::Variant::CGL},
      {"vbv", stm::Variant::VBV},
      {"tbv", stm::Variant::TBVSorting},
      {"hv", stm::Variant::HVSorting},
      {"backoff", stm::Variant::HVBackoff},
      {"opt", stm::Variant::Optimized},
      {"egpgv", stm::Variant::EGPGV},
  };
  for (const Alias &A : Aliases)
    if (Name == A.Name) {
      Out = A.Kind;
      return true;
    }
  for (unsigned V = 0; V <= static_cast<unsigned>(stm::Variant::EGPGV); ++V)
    if (Name == stm::variantName(static_cast<stm::Variant>(V))) {
      Out = static_cast<stm::Variant>(V);
      return true;
    }
  return false;
}

/// Positional/flag cursor over argv.
struct Args {
  int Argc;
  char **Argv;
  int I = 2; // past "<prog> <command>"

  bool done() const { return I >= Argc; }
  std::string next() { return Argv[I++]; }
  bool value(const char *Flag, std::string &Out) {
    if (done()) {
      std::fprintf(stderr, "stmtrace: %s needs a value\n", Flag);
      return false;
    }
    Out = next();
    return true;
  }
};

int cmdRecord(Args &A) {
  std::string WorkloadName, Out;
  stm::Variant Kind = stm::Variant::HVSorting;
  unsigned Scale = 1;
  uint64_t NumLocks = 1u << 16;
  bool RecordOps = false, Verify = true;

  while (!A.done()) {
    std::string Arg = A.next();
    std::string Val;
    if (Arg == "-w" || Arg == "--workload") {
      if (!A.value(Arg.c_str(), WorkloadName))
        return 2;
    } else if (Arg == "-v" || Arg == "--variant") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      if (!parseVariant(Val, Kind)) {
        std::fprintf(stderr, "stmtrace: unknown variant '%s'\n", Val.c_str());
        return 2;
      }
    } else if (Arg == "--scale") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Scale = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Arg == "--locks") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      NumLocks = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "-o" || Arg == "--out") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else if (Arg == "--ops") {
      RecordOps = true;
    } else if (Arg == "--no-verify") {
      Verify = false;
    } else {
      std::fprintf(stderr, "stmtrace: unknown record option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }
  if (WorkloadName.empty() || Out.empty()) {
    std::fprintf(stderr, "stmtrace: record needs -w <workload> -o <trace>\n");
    return 2;
  }

  std::unique_ptr<workloads::Workload> W =
      workloads::makeWorkload(WorkloadName, Scale);
  workloads::HarnessConfig HC;
  HC.Kind = Kind;
  HC.Launches = workloads::paperLaunches(WorkloadName, Scale);
  HC.NumLocks = NumLocks;
  HC.Verify = Verify;
  trace::TxTraceRecorder::Options RecOpts;
  RecOpts.RecordOps = RecordOps;
  trace::TxTraceRecorder Recorder(RecOpts);
  HC.Recorder = &Recorder;

  workloads::HarnessResult R = workloads::runWorkload(*W, HC);
  if (!R.Completed || (Verify && !R.Verified)) {
    std::fprintf(stderr, "stmtrace: %s/%s run failed: %s\n",
                 WorkloadName.c_str(), stm::variantName(Kind),
                 R.Error.c_str());
    return 1;
  }
  std::string Err;
  if (!trace::writeTrace(Recorder.trace(), Out, &Err)) {
    std::fprintf(stderr, "stmtrace: %s\n", Err.c_str());
    return 1;
  }
  std::printf("recorded %s/%s: %zu tx events, %llu cycles, "
              "%llu commits, %llu aborts -> %s\n",
              WorkloadName.c_str(), stm::variantName(Kind),
              Recorder.trace().Events.size(),
              static_cast<unsigned long long>(R.TotalCycles),
              static_cast<unsigned long long>(R.Stm.Commits),
              static_cast<unsigned long long>(R.Stm.Aborts), Out.c_str());
  return 0;
}

bool loadTrace(const std::string &Path, trace::TxTrace &T) {
  std::string Err;
  if (!trace::readTrace(T, Path, &Err)) {
    std::fprintf(stderr, "stmtrace: %s\n", Err.c_str());
    return false;
  }
  return true;
}

int cmdCheck(Args &A) {
  if (A.done())
    return usage(A.Argv[0]);
  std::string Path = A.next();
  trace::TxTrace T;
  if (!loadTrace(Path, T))
    return 1;
  trace::CheckResult R = trace::checkTrace(T);
  if (!R.ok()) {
    std::fprintf(stderr, "FAIL %s: %s: %s\n", Path.c_str(),
                 trace::checkStatusName(R.Status), R.Message.c_str());
    return 1;
  }
  std::printf("OK %s: %llu attempts, %llu update commits replayed, "
              "%llu reads explained\n",
              Path.c_str(), static_cast<unsigned long long>(R.Attempts),
              static_cast<unsigned long long>(R.CommitsReplayed),
              static_cast<unsigned long long>(R.ReadsExplained));
  return 0;
}

int cmdReport(Args &A) {
  if (A.done())
    return usage(A.Argv[0]);
  std::string Path = A.next();
  size_t TopN = 10;
  while (!A.done()) {
    std::string Arg = A.next();
    std::string Val;
    if (Arg == "--top") {
      if (!A.value("--top", Val))
        return 2;
      TopN = std::strtoul(Val.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "stmtrace: unknown report option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }
  trace::TxTrace T;
  if (!loadTrace(Path, T))
    return 1;
  trace::TraceReport Rep = trace::analyzeTrace(T, TopN);
  trace::printReport(stdout, T, Rep);
  return 0;
}

int cmdExport(Args &A) {
  if (A.done())
    return usage(A.Argv[0]);
  std::string Path = A.next();
  std::string Out = Path + ".json";
  bool IncludeInstants = false;
  while (!A.done()) {
    std::string Arg = A.next();
    if (Arg == "-o" || Arg == "--out") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else if (Arg == "--ops") {
      IncludeInstants = true;
    } else {
      std::fprintf(stderr, "stmtrace: unknown export option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }
  trace::TxTrace T;
  if (!loadTrace(Path, T))
    return 1;
  std::string Err;
  if (!trace::writePerfettoJson(T, Out, IncludeInstants, &Err)) {
    std::fprintf(stderr, "stmtrace: %s\n", Err.c_str());
    return 1;
  }
  std::printf("wrote %s (load in ui.perfetto.dev or chrome://tracing)\n",
              Out.c_str());
  return 0;
}

int cmdSan(Args &A) {
  std::string WorkloadName, Out;
  stm::Variant Kind = stm::Variant::HVSorting;
  unsigned Scale = 1;
  uint64_t NumLocks = 1u << 16;
  uint64_t MaxReports = 100;
  bool Verify = true;

  while (!A.done()) {
    std::string Arg = A.next();
    std::string Val;
    if (Arg == "-w" || Arg == "--workload") {
      if (!A.value(Arg.c_str(), WorkloadName))
        return 2;
    } else if (Arg == "-v" || Arg == "--variant") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      if (!parseVariant(Val, Kind)) {
        std::fprintf(stderr, "stmtrace: unknown variant '%s'\n", Val.c_str());
        return 2;
      }
    } else if (Arg == "--scale") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      Scale = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
    } else if (Arg == "--locks") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      NumLocks = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "--max-reports") {
      if (!A.value(Arg.c_str(), Val))
        return 2;
      MaxReports = std::strtoull(Val.c_str(), nullptr, 10);
    } else if (Arg == "-o" || Arg == "--out") {
      if (!A.value(Arg.c_str(), Out))
        return 2;
    } else if (Arg == "--no-verify") {
      Verify = false;
    } else {
      std::fprintf(stderr, "stmtrace: unknown san option '%s'\n", Arg.c_str());
      return 2;
    }
  }
  if (WorkloadName.empty()) {
    std::fprintf(stderr, "stmtrace: san needs -w <workload>\n");
    return 2;
  }
#if !GPUSTM_SAN_ENABLED
  std::fprintf(stderr, "stmtrace: simtsan hooks are compiled out "
                       "(GPUSTM_NO_SAN); rebuild without it\n");
  return 2;
#endif

  std::unique_ptr<workloads::Workload> W =
      workloads::makeWorkload(WorkloadName, Scale);
  workloads::HarnessConfig HC;
  HC.Kind = Kind;
  HC.Launches = workloads::paperLaunches(WorkloadName, Scale);
  HC.NumLocks = NumLocks;
  HC.Verify = Verify;
  analysis::SimtsanOptions SanOpts;
  SanOpts.MaxReports = MaxReports;
  SanOpts.PrintToStderr = false; // Findings are printed in one block below.
  analysis::Simtsan San(SanOpts);
  HC.San = &San;

  workloads::HarnessResult R = workloads::runWorkload(*W, HC);
  if (!R.Completed || (Verify && !R.Verified)) {
    std::fprintf(stderr, "stmtrace: %s/%s run failed: %s\n",
                 WorkloadName.c_str(), stm::variantName(Kind),
                 R.Error.c_str());
    return 1;
  }
  if (!Out.empty() && !San.writeJsonFile(Out)) {
    std::fprintf(stderr, "stmtrace: cannot write %s\n", Out.c_str());
    return 1;
  }

  std::printf("simtsan %s/%s: %llu cycles, %llu commits, %llu aborts, "
              "%llu finding(s)\n",
              WorkloadName.c_str(), stm::variantName(Kind),
              static_cast<unsigned long long>(R.TotalCycles),
              static_cast<unsigned long long>(R.Stm.Commits),
              static_cast<unsigned long long>(R.Stm.Aborts),
              static_cast<unsigned long long>(San.findingCount()));
  for (unsigned K = 0; K < analysis::NumReportKinds; ++K) {
    uint64_t N = San.count(static_cast<analysis::ReportKind>(K));
    if (N != 0)
      std::printf("  %-24s %llu\n",
                  analysis::reportKindName(static_cast<analysis::ReportKind>(K)),
                  static_cast<unsigned long long>(N));
  }
  for (const analysis::SanReport &Rep : San.reports())
    std::printf("%s: %s [block %u warp %u lane %u thread %u sm %u "
                "cycle %llu]\n",
                analysis::reportKindName(Rep.Kind), Rep.Message.c_str(),
                Rep.Block, Rep.Warp, Rep.Lane, Rep.Thread, Rep.Sm,
                static_cast<unsigned long long>(Rep.Cycle));
  if (San.findingCount() > San.reports().size())
    std::printf("(%llu finding(s) beyond the --max-reports cap not shown)\n",
                static_cast<unsigned long long>(San.findingCount() -
                                                San.reports().size()));
  return San.findingCount() == 0 ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  Args A{Argc, Argv};
  std::string Cmd = Argv[1];
  if (Cmd == "record")
    return cmdRecord(A);
  if (Cmd == "check")
    return cmdCheck(A);
  if (Cmd == "report")
    return cmdReport(A);
  if (Cmd == "export")
    return cmdExport(A);
  if (Cmd == "san")
    return cmdSan(A);
  std::fprintf(stderr, "stmtrace: unknown command '%s'\n", Cmd.c_str());
  return usage(Argv[0]);
}
